open Sia_numeric
module Trace = Sia_trace.Trace

(* Atom-keyed tables must hash/compare through Atom's own functions:
   atoms embed Rat coefficients, and the polymorphic hash would key on
   their physical representation. *)
module AtomTbl = Hashtbl.Make (Atom)

type model = (int * Rat.t) list

type result =
  | Sat of model
  | Unsat
  | Unknown

let result_label = function
  | Sat _ -> "sat"
  | Unsat -> "unsat"
  | Unknown -> "unknown"

let model_value m v = match List.assoc_opt v m with Some r -> r | None -> Rat.zero

(* Strict variant for call sites that require a total model (the
   certificate checker, countermodel extraction): a missing assignment is
   a bug, not a zero. *)
let model_value_strict m v =
  match List.assoc_opt v m with
  | Some r -> r
  | None ->
    invalid_arg
      (Printf.sprintf "Solver.model_value_strict: variable %d unassigned" v)

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  queries : int;
  sat_answers : int;
  unsat_answers : int;
  unknown_answers : int;
  cache_hits : int;
  encodings : int;
  instances : int;
  theory_rounds : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  pivots : int;
  tableau_rebuilds : int;
  reused_rounds : int;
  extended_rounds : int;
  clusters : int;
  shared_hits : int;
  shared_misses : int;
  shared_lemmas : int;
  pool_hits : int;
  underapprox_solves : int;
  gen_fallbacks : int;
  cegqi_instantiations : int;
  encode_time : float;
  search_time : float;
  theory_time : float;
  cert_lemmas : int;
  cert_proofs : int;
  cert_models : int;
  cert_rejections : int;
  cert_time : float;
}

let stats_zero =
  {
    queries = 0;
    sat_answers = 0;
    unsat_answers = 0;
    unknown_answers = 0;
    cache_hits = 0;
    encodings = 0;
    instances = 0;
    theory_rounds = 0;
    conflicts = 0;
    propagations = 0;
    restarts = 0;
    pivots = 0;
    tableau_rebuilds = 0;
    reused_rounds = 0;
    extended_rounds = 0;
    clusters = 0;
    shared_hits = 0;
    shared_misses = 0;
    shared_lemmas = 0;
    pool_hits = 0;
    underapprox_solves = 0;
    gen_fallbacks = 0;
    cegqi_instantiations = 0;
    encode_time = 0.0;
    search_time = 0.0;
    theory_time = 0.0;
    cert_lemmas = 0;
    cert_proofs = 0;
    cert_models = 0;
    cert_rejections = 0;
    cert_time = 0.0;
  }

let totals = ref stats_zero
let stats () = !totals
let reset_stats () = totals := stats_zero

let stats_add a b =
  {
    queries = a.queries + b.queries;
    sat_answers = a.sat_answers + b.sat_answers;
    unsat_answers = a.unsat_answers + b.unsat_answers;
    unknown_answers = a.unknown_answers + b.unknown_answers;
    cache_hits = a.cache_hits + b.cache_hits;
    encodings = a.encodings + b.encodings;
    instances = a.instances + b.instances;
    theory_rounds = a.theory_rounds + b.theory_rounds;
    conflicts = a.conflicts + b.conflicts;
    propagations = a.propagations + b.propagations;
    restarts = a.restarts + b.restarts;
    pivots = a.pivots + b.pivots;
    tableau_rebuilds = a.tableau_rebuilds + b.tableau_rebuilds;
    reused_rounds = a.reused_rounds + b.reused_rounds;
    extended_rounds = a.extended_rounds + b.extended_rounds;
    clusters = a.clusters + b.clusters;
    shared_hits = a.shared_hits + b.shared_hits;
    shared_misses = a.shared_misses + b.shared_misses;
    shared_lemmas = a.shared_lemmas + b.shared_lemmas;
    pool_hits = a.pool_hits + b.pool_hits;
    underapprox_solves = a.underapprox_solves + b.underapprox_solves;
    gen_fallbacks = a.gen_fallbacks + b.gen_fallbacks;
    cegqi_instantiations = a.cegqi_instantiations + b.cegqi_instantiations;
    encode_time = a.encode_time +. b.encode_time;
    search_time = a.search_time +. b.search_time;
    theory_time = a.theory_time +. b.theory_time;
    cert_lemmas = a.cert_lemmas + b.cert_lemmas;
    cert_proofs = a.cert_proofs + b.cert_proofs;
    cert_models = a.cert_models + b.cert_models;
    cert_rejections = a.cert_rejections + b.cert_rejections;
    cert_time = a.cert_time +. b.cert_time;
  }

(* Merge a delta computed elsewhere — a worker process's [stats_since]
   over its lifetime — into this process's totals. The pool calls this
   once per worker so that [stats ()] in the parent reflects work done on
   its behalf in forked children. *)
let absorb_stats s = totals := stats_add !totals s

let stats_since s0 =
  let s = !totals in
  {
    queries = s.queries - s0.queries;
    sat_answers = s.sat_answers - s0.sat_answers;
    unsat_answers = s.unsat_answers - s0.unsat_answers;
    unknown_answers = s.unknown_answers - s0.unknown_answers;
    cache_hits = s.cache_hits - s0.cache_hits;
    encodings = s.encodings - s0.encodings;
    instances = s.instances - s0.instances;
    theory_rounds = s.theory_rounds - s0.theory_rounds;
    conflicts = s.conflicts - s0.conflicts;
    propagations = s.propagations - s0.propagations;
    restarts = s.restarts - s0.restarts;
    pivots = s.pivots - s0.pivots;
    tableau_rebuilds = s.tableau_rebuilds - s0.tableau_rebuilds;
    reused_rounds = s.reused_rounds - s0.reused_rounds;
    extended_rounds = s.extended_rounds - s0.extended_rounds;
    clusters = s.clusters - s0.clusters;
    shared_hits = s.shared_hits - s0.shared_hits;
    shared_misses = s.shared_misses - s0.shared_misses;
    shared_lemmas = s.shared_lemmas - s0.shared_lemmas;
    pool_hits = s.pool_hits - s0.pool_hits;
    underapprox_solves = s.underapprox_solves - s0.underapprox_solves;
    gen_fallbacks = s.gen_fallbacks - s0.gen_fallbacks;
    cegqi_instantiations = s.cegqi_instantiations - s0.cegqi_instantiations;
    encode_time = s.encode_time -. s0.encode_time;
    search_time = s.search_time -. s0.search_time;
    theory_time = s.theory_time -. s0.theory_time;
    cert_lemmas = s.cert_lemmas - s0.cert_lemmas;
    cert_proofs = s.cert_proofs - s0.cert_proofs;
    cert_models = s.cert_models - s0.cert_models;
    cert_rejections = s.cert_rejections - s0.cert_rejections;
    cert_time = s.cert_time -. s0.cert_time;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "queries=%d (sat=%d unsat=%d unknown=%d cached=%d) encodings=%d \
     instances=%d theory-rounds=%d (reused=%d extended=%d rebuilds=%d) clusters=%d \
     shared=%d/%d (lemmas=%d) pool=%d underapprox=%d fallbacks=%d cegqi=%d \
     conflicts=%d propagations=%d restarts=%d \
     pivots=%d encode=%.3fs search=%.3fs (theory=%.3fs) certs=%d/%d/%d \
     rejected=%d cert=%.3fs"
    s.queries s.sat_answers s.unsat_answers s.unknown_answers s.cache_hits
    s.encodings s.instances s.theory_rounds s.reused_rounds s.extended_rounds
    s.tableau_rebuilds
    s.clusters s.shared_hits s.shared_misses s.shared_lemmas s.pool_hits
    s.underapprox_solves s.gen_fallbacks s.cegqi_instantiations s.conflicts
    s.propagations s.restarts s.pivots s.encode_time s.search_time
    s.theory_time s.cert_lemmas s.cert_proofs s.cert_models s.cert_rejections
    s.cert_time

(* Sample-generation fast-path counters. The ladder itself lives above
   the solver (Mpool / Samples); the counters live here so the existing
   per-phase snapshot and fork-pool absorption plumbing covers them. *)
let note_pool_hits n = totals := { !totals with pool_hits = !totals.pool_hits + n }

let note_underapprox_solve () =
  totals := { !totals with underapprox_solves = !totals.underapprox_solves + 1 }

let note_gen_fallback () =
  totals := { !totals with gen_fallbacks = !totals.gen_fallbacks + 1 }

let note_cegqi_instantiation () =
  totals :=
    { !totals with cegqi_instantiations = !totals.cegqi_instantiations + 1 }

let bump_query () = totals := { !totals with queries = !totals.queries + 1 }

let bump_cache_hit () =
  totals := { !totals with cache_hits = !totals.cache_hits + 1 }

let bump_encoding dt =
  totals :=
    {
      !totals with
      encodings = !totals.encodings + 1;
      encode_time = !totals.encode_time +. dt;
    }

let count_answer r =
  (totals :=
     match r with
     | Sat _ -> { !totals with sat_answers = !totals.sat_answers + 1 }
     | Unsat -> { !totals with unsat_answers = !totals.unsat_answers + 1 }
     | Unknown -> { !totals with unknown_answers = !totals.unknown_answers + 1 });
  r

(* ------------------------------------------------------------------ *)
(* Certificate auditing                                                *)
(* ------------------------------------------------------------------ *)

(* The solver produces certificates; checking them lives in [lib/check],
   which must not be a dependency of this library (it would invert the
   trust relationship: the checker depends on the formula/atom types
   only, not on solver internals). The checker therefore injects itself
   here as an [auditor] factory; in paranoid mode every new instance gets
   its own auditor, which receives the full proof-event stream, every
   theory lemma with its certificate, and every model before it is
   returned. Auditors raise {!Cert.Certificate_error} on a bad
   certificate — verdicts never silently pass unaudited. *)
type auditor = {
  on_sat_event : Cert.sat_event -> unit;
  on_lemma : is_int:(int -> bool) -> Theory.lit list -> Cert.theory_cert -> unit;
  on_model : (int -> Rat.t) -> Formula.t list -> unit;
}

let paranoid_flag = ref false
let set_paranoid b = paranoid_flag := b
let paranoid () = !paranoid_flag

let auditor_factory : (unit -> auditor) option ref = ref None
let set_auditor_factory f = auditor_factory := Some f

let new_auditor () =
  if !paranoid_flag then
    match !auditor_factory with Some f -> Some (f ()) | None -> None
  else None

let bump_cert_time dt =
  totals := { !totals with cert_time = !totals.cert_time +. dt }

(* Run one audit step, timing it and counting the outcome. Certificate
   rejections propagate to the caller: a rejection means either a solver
   soundness bug or a checker bug, and both must be loud. *)
let audited kind f =
  let t0 = Sys.time () in
  match f () with
  | () -> (
    bump_cert_time (Sys.time () -. t0);
    match kind with
    | `Event -> ()
    | `Proof -> totals := { !totals with cert_proofs = !totals.cert_proofs + 1 }
    | `Lemma -> totals := { !totals with cert_lemmas = !totals.cert_lemmas + 1 }
    | `Model -> totals := { !totals with cert_models = !totals.cert_models + 1 })
  | exception e ->
    bump_cert_time (Sys.time () -. t0);
    (match e with
     | Cert.Certificate_error _ ->
       totals := { !totals with cert_rejections = !totals.cert_rejections + 1 }
     | _ -> ());
    raise e

let traced aud ev =
  audited
    (match ev with Cert.Final _ -> `Proof | Cert.Given _ | Cert.Learnt _ -> `Event)
    (fun () -> aud.on_sat_event ev)

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

(* Tseitin encoding, implication direction only (sufficient for
   satisfiability): the formula is in NNF, so it is monotone in its
   literals, except for Dvd atoms which may occur under both polarities and
   whose assignments are therefore always passed to the theory.

   The implication-only direction is also what makes the returned root
   literal usable as an activation literal: assuming the root turns the
   formula on, while leaving it unassumed makes its clauses vacuous. *)
let encode sat atom_var f =
  let rec enc f =
    match f with
    | Formula.True ->
      let p = Sat.new_var sat in
      Sat.pos p
    | Formula.False ->
      let p = Sat.new_var sat in
      Sat.add_clause sat [ Sat.neg_lit p ];
      Sat.pos p
    | Formula.Atom a -> Sat.pos (atom_var a)
    | Formula.Not (Formula.Atom (Atom.Dvd _ as a)) -> Sat.neg_lit (atom_var a)
    | Formula.Not _ -> invalid_arg "Solver.encode: formula not in NNF"
    | Formula.And fs ->
      let p = Sat.new_var sat in
      List.iter (fun g -> Sat.add_clause sat [ Sat.neg_lit p; enc g ]) fs;
      Sat.pos p
    | Formula.Or fs ->
      let p = Sat.new_var sat in
      let lits = List.map enc fs in
      Sat.add_clause sat (Sat.neg_lit p :: lits);
      Sat.pos p
  in
  enc f

type instance = {
  sat : Sat.t;
  atom_tbl : int AtomTbl.t;
  mutable atoms : (Atom.t * int) list;
  mutable max_atom_var : int; (* max theory var over [atoms]; -1 if none *)
  fvars : int list;
  formula : Formula.t; (* NNF *)
  aud : auditor option;
  (* Theory session kept across runs on this instance. The simplex layer
     guarantees every check is bit-identical to one-shot solving
     regardless of tableau history, so reuse only changes cost, never
     answers. Recreated when a new atom's variable reaches the session's
     witness range. *)
  mutable tsess : Theory.session option;
}

let make_instance f =
  Trace.span "smt.encode"
  @@ fun () ->
  let t0 = Sys.time () in
  let sat = Sat.create () in
  (* The tracer must be live before the first clause of the encoding, or
     the replayed clause set would be incomplete. *)
  let aud = new_auditor () in
  (match aud with Some a -> Sat.set_tracer sat (traced a) | None -> ());
  let atom_tbl = AtomTbl.create 64 in
  let inst =
    {
      sat;
      atom_tbl;
      atoms = [];
      max_atom_var = -1;
      fvars = Formula.vars f;
      formula = f;
      aud;
      tsess = None;
    }
  in
  let atom_var a =
    match AtomTbl.find_opt atom_tbl a with
    | Some v -> v
    | None ->
      let v = Sat.new_var sat in
      AtomTbl.add atom_tbl a v;
      inst.atoms <- (a, v) :: inst.atoms;
      inst.max_atom_var <- List.fold_left max inst.max_atom_var (Atom.vars a);
      v
  in
  let root = encode sat atom_var f in
  Sat.add_clause sat [ root ];
  totals := { !totals with instances = !totals.instances + 1 };
  bump_encoding (Sys.time () -. t0);
  inst

let atom_var inst a =
  match AtomTbl.find_opt inst.atom_tbl a with
  | Some v -> v
  | None ->
    let v = Sat.new_var inst.sat in
    AtomTbl.add inst.atom_tbl a v;
    inst.atoms <- (a, v) :: inst.atoms;
    inst.max_atom_var <- List.fold_left max inst.max_atom_var (Atom.vars a);
    v

let default_max_rounds = 50_000
let default_node_limit = 4000 (* Theory.check_cert's default *)

(* Theory lemmas (blocking clauses) learned so far, process-wide; the
   shared-context layer samples deltas around cluster runs to attribute
   lemmas to shared sessions. *)
let theory_lemma_count = ref 0

(* One DPLL(T) run on the current clause set, optionally under assumption
   literals. [check] lists extra formulas (beyond [inst.formula]) that the
   caller asserted via assumptions: their variables join the model padding
   and the returned model is validated against them too.

   [theory_atoms], when given, restricts which atoms are passed to the
   theory solver. On a long-lived session only the atoms of the base
   formula, of the current assumptions, and of the model-blocking clauses
   are relevant to the query; stale atoms from earlier queries stay
   boolean-assigned (phase saving) but constraining the arithmetic model
   with them would make every simplex call grow with session age — and
   their values are free as far as this query's formulas are concerned.
   Soundness is unchanged: the encoding is monotone NNF, so root truth
   only rests on the checked atoms, and the model is still validated
   against the full formulas below.

   The shared-context cluster layer reinterprets an instance's atom
   variables per run: [theory_atoms] may map a variable to a *different*
   atom than the one encoded (the skeleton atom with its hole replaced by
   this member's constant), so theory conflicts — and the blocking
   clauses built from them — are resolved through that per-run mapping,
   never through [inst.atom_tbl]. Two per-run hooks support the reuse:

   - [model_formula] replaces [inst.formula] for final model validation
     (the instance encodes the skeleton, but a Sat model must satisfy the
     member's instantiated formula);
   - [lemma_guard], when present, receives each theory conflict core as
     [(atom_var, polarity)] pairs and returns a fresh guard variable; the
     blocking clause is emitted as [¬guard ∨ clause] and the guard is
     assumed for the rest of this run only. Clauses learnt by the SAT
     core from guarded clauses keep their [¬guard] literals (guards are
     never resolvable), so everything a run learns stays vacuous for
     members that do not re-validate and re-assume the guard. *)
let run_instance ?(max_rounds = 50_000) ?node_limit ?(assumptions = [])
    ?(check = []) ?fvars ?theory_atoms ?model_formula ?lemma_guard ~is_int inst
    =
  if Trace.enabled () then
    Trace.begin_span "smt.solve"
      ~args:
        [
          ("atoms", Trace.Int (List.length inst.atoms));
          ("assumptions", Trace.Int (List.length assumptions));
        ];
  let t0 = Sys.time () in
  let c0 = Sat.n_conflicts inst.sat in
  let p0 = Sat.n_propagations inst.sat in
  let r0 = Sat.n_restarts inst.sat in
  let pv0 = Simplex.pivot_count () in
  let ru0 = Theory.reused_round_count () in
  let ex0 = Theory.extended_round_count () in
  let rb0 = Theory.rebuild_count () in
  (* Model-padding variables: everything the validated formulas mention.
     Sessions precompute this once per query ([fvars]) — walking every
     check formula again on each enumeration step is pure waste. *)
  let fvars =
    match (fvars, check) with
    | Some fv, _ -> fv
    | None, [] -> inst.fvars
    | None, _ ->
      List.sort_uniq Stdlib.compare
        (List.rev_append (List.concat_map Formula.vars check) inst.fvars)
  in
  let atoms = match theory_atoms with Some l -> l | None -> inst.atoms in
  (* Conflict cores come back as atoms; resolve them to SAT variables
     through the same per-run mapping the theory literals were built
     from — under a cluster consult the effective atoms are not the
     encoded ones. *)
  let var_of_atom =
    match theory_atoms with
    | None -> fun a -> AtomTbl.find inst.atom_tbl a
    | Some l ->
      let tbl = AtomTbl.create (2 * List.length l) in
      List.iter (fun (a, v) -> AtomTbl.replace tbl a v) l;
      fun a -> AtomTbl.find tbl a
  in
  (* Guard literals created by [lemma_guard] mid-run; assumed alongside
     the caller's assumptions for the remainder of this run. *)
  let guard_assumptions = ref [] in
  (* The theory session lives on the instance and is shared across runs:
     consecutive theory rounds — and consecutive runs of a long-lived
     session or cluster — share the incremental tableau, diffing each
     round's literal set against the previous one. The session's witness
     range starts above every atom variable of the instance (a superset
     of any run's [atoms]); when a later query encodes an atom whose
     variable reaches that range, the session is recreated one size up.
     Witness ids shift across recreations, which is unobservable: models
     are filtered to input variables and certificates are phrased over
     literal positions. *)
  let max_var = max 0 inst.max_atom_var in
  let tsession =
    match inst.tsess with
    | Some ts when Theory.session_fresh_base ts > max_var ->
      Theory.set_session_node_limit ts
        (Option.value node_limit ~default:default_node_limit);
      ts
    | _ ->
      let ts = Theory.create_session ~is_int ?node_limit ~max_var () in
      inst.tsess <- Some ts;
      ts
  in
  let rec loop round =
    if round > max_rounds then Unknown
    else if
      not
        (Trace.span "sat.search" (fun () ->
             Sat.solve
               ~assumptions:(List.rev_append !guard_assumptions assumptions)
               inst.sat))
    then Unsat
    else begin
      (* Theory literals from the boolean model: positive Lin atoms, and
         Dvd atoms under either polarity. *)
      let lits =
        List.filter_map
          (fun (a, v) ->
            let value = Sat.value inst.sat v in
            match a with
            | Atom.Lin _ -> if value then Some (a, true) else None
            | Atom.Dvd _ -> Some (a, value))
          atoms
      in
      let tt0 = Sys.time () in
      if Trace.enabled () then
        Trace.begin_span "theory.check"
          ~args:
            [ ("round", Trace.Int round); ("lits", Trace.Int (List.length lits)) ];
      let verdict, cert =
        match Theory.check_cert_session tsession lits with
        | vc -> vc
        | exception e ->
          if Trace.enabled () then
            Trace.end_span "theory.check"
              ~args:[ ("exn", Trace.String (Printexc.to_string e)) ];
          raise e
      in
      if Trace.enabled () then
        Trace.end_span "theory.check"
          ~args:
            [
              ( "verdict",
                Trace.String
                  (match verdict with
                   | Theory.Sat _ -> "sat"
                   | Theory.Unsat _ -> "unsat"
                   | Theory.Unknown -> "unknown") );
            ];
      totals :=
        {
          !totals with
          theory_rounds = !totals.theory_rounds + 1;
          theory_time = !totals.theory_time +. (Sys.time () -. tt0);
        };
      match verdict with
      | Theory.Unknown -> Unknown
      | Theory.Sat m ->
        let assigned = Hashtbl.create 64 in
        List.iter (fun (v, _) -> Hashtbl.replace assigned v ()) m;
        let m =
          List.fold_left
            (fun acc v ->
              if Hashtbl.mem assigned v then acc
              else begin
                Hashtbl.replace assigned v ();
                (v, Rat.zero) :: acc
              end)
            m fvars
        in
        (* The model is padded over every variable of the formulas below,
           so the strict lookup cannot raise on a correct model — and a
           model that misses one of their variables is exactly the bug the
           strict lookup exists to expose. *)
        let lookup = model_value_strict m in
        let vformulas =
          match model_formula with
          | Some f -> f :: check
          | None -> inst.formula :: check
        in
        (match inst.aud with
         | Some a ->
           (* Paranoid: the independent evaluator replaces the inline
              backstop (it checks the same formulas with its own atom
              semantics and raises {!Cert.Certificate_error}). *)
           audited `Model (fun () -> a.on_model lookup vformulas)
         | None ->
           if not (List.for_all (fun f -> Formula.eval f lookup) vformulas)
           then
             failwith "Solver.solve: internal error, model does not satisfy formula");
        Sat m
      | Theory.Unsat core ->
        (match inst.aud with
         | Some a ->
           let cert =
             match cert with
             | Some c -> c
             | None ->
               raise (Cert.Certificate_error "theory Unsat without certificate")
           in
           audited `Lemma (fun () -> a.on_lemma ~is_int core cert)
         | None -> ());
        let blocking =
          List.map
            (fun (a, polarity) ->
              let v = var_of_atom a in
              if polarity then Sat.neg_lit v else Sat.pos v)
            core
        in
        (match lemma_guard with
         | None -> Sat.add_clause inst.sat blocking
         | Some guard ->
           let g =
             guard (List.map (fun (a, p) -> (var_of_atom a, p)) core)
           in
           guard_assumptions := Sat.pos g :: !guard_assumptions;
           Sat.add_clause inst.sat (Sat.neg_lit g :: blocking));
        incr theory_lemma_count;
        loop (round + 1)
    end
  in
  let r =
    match loop 0 with
    | r -> r
    | exception e ->
      if Trace.enabled () then
        Trace.end_span "smt.solve"
          ~args:[ ("exn", Trace.String (Printexc.to_string e)) ];
      raise e
  in
  totals :=
    {
      !totals with
      search_time = !totals.search_time +. (Sys.time () -. t0);
      conflicts = !totals.conflicts + (Sat.n_conflicts inst.sat - c0);
      propagations = !totals.propagations + (Sat.n_propagations inst.sat - p0);
      restarts = !totals.restarts + (Sat.n_restarts inst.sat - r0);
      pivots = !totals.pivots + (Simplex.pivot_count () - pv0);
      reused_rounds = !totals.reused_rounds + (Theory.reused_round_count () - ru0);
      extended_rounds =
        !totals.extended_rounds + (Theory.extended_round_count () - ex0);
      tableau_rebuilds = !totals.tableau_rebuilds + (Theory.rebuild_count () - rb0);
    };
  if Trace.enabled () then
    Trace.end_span "smt.solve"
      ~args:
        [
          ("result", Trace.String (result_label r));
          ("conflicts", Trace.Int (Sat.n_conflicts inst.sat - c0));
          ("pivots", Trace.Int (Simplex.pivot_count () - pv0));
        ];
  r

(* ------------------------------------------------------------------ *)
(* Memoized one-shot solving                                           *)
(* ------------------------------------------------------------------ *)

(* Verdicts are memoized on a *canonical* key so that the syntactically
   different ways CEGIS asks the same question coincide:

   - the formula is order-normalized ({!Formula.canon}: And/Or children
     sorted and deduplicated), so [base ∧ p ∧ q] and [q ∧ base ∧ p] share
     an entry regardless of how a session interleaved its assertions;
   - variables are alpha-renamed to 0,1,2,... in first-occurrence order
     over the canonical formula, so fresh-variable numbering (per-attempt
     [Encode] environments allocate from a moving counter) does not split
     otherwise identical queries;
   - the [is_int] fingerprint of the canonical variables joins the key
     (the only part of [is_int] the answer can depend on);
   - the resource limits ([max_rounds], theory [node_limit]) join the key,
     so a cached verdict is always one the same call would have computed —
     without them a warm-session Sat could answer for a colder query that
     would itself have returned Unknown, which would make cached and
     recomputed runs observably different (the parallel pool relies on
     hit ≡ recompute for its determinism guarantee).

   Only Sat/Unsat verdicts are cached — Unknown is a resource artifact,
   not a truth. Models are stored in canonical variable space and
   translated back through the renaming on a hit. The cache has no
   invalidation rule by construction: a query's answer depends on nothing
   but the key. *)
module Memo = Hashtbl.Make (struct
  type t = Formula.t * bool list * int * int

  let equal (f1, b1, r1, n1) (f2, b2, r2, n2) =
    r1 = r2 && n1 = n2 && b1 = b2 && Formula.equal f1 f2

  let hash = Key.id_hash
end)

let memo : result Memo.t = Memo.create 1024

(* Bound the cache; wholesale reset on overflow keeps it O(1) amortized
   and is plenty for the CEGIS workloads (a run rarely exceeds a few
   thousand distinct formulas). *)
let memo_limit = 16_384

(* Canonical-key construction lives in {!Key}, shared with the skeleton
   clustering below — both must agree on the alpha-renaming for cluster
   answers to be storable under memo keys. *)
let memo_key = Key.canonical

let memo_find (k : Key.canonical) =
  match Memo.find_opt memo k.Key.id with
  | None | Some Unknown -> None
  | Some Unsat -> Some Unsat
  | Some (Sat m) -> Some (Sat (List.map (fun (cv, r) -> (k.Key.back.(cv), r)) m))

let memo_store (k : Key.canonical) r =
  match r with
  | Unknown -> ()
  | Unsat | Sat _ ->
    let r =
      match r with
      | Sat m ->
        (* Store in canonical space. Variables outside the key (none in
           practice: the theory already filters its Dvd witnesses, and
           padding covers exactly the formula's variables) are dropped
           rather than corrupting the entry. *)
        Sat
          (List.filter_map
             (fun (v, value) ->
               match Hashtbl.find_opt k.Key.fwd v with
               | Some cv -> Some (cv, value)
               | None -> None)
             m)
      | r -> r
    in
    if Memo.length memo >= memo_limit then Memo.reset memo;
    Memo.replace memo k.Key.id r

module FTbl = Hashtbl.Make (Formula)

(* ------------------------------------------------------------------ *)
(* Shared-context clusters                                             *)
(* ------------------------------------------------------------------ *)

(* Cross-query sharing, the batched-solving idea of the shared-context
   SAT literature: the CEGIS workload asks thousands of queries that are
   the same formula up to constants (threshold probes over a handful of
   predicate shapes), so the propositional structure, the SAT core's
   learnt clauses, and the Farkas combinations behind theory conflicts
   proved while refuting one of them are mostly reusable for its
   skeleton-mates. Each skeleton (see {!Key.skeletonize}) owns one
   persistent SAT instance encoding the constant-abstracted formula —
   every member shares that boolean structure verbatim, so CDCL learning
   accumulates across the batch.

   Theory reasoning, by contrast, is always done in the consulting
   member's own concrete space: for each run the instance's atom
   variables are reinterpreted as the skeleton atoms with this member's
   constants substituted for the holes, so a theory check costs what a
   fresh solve's would (constants stay constants; the tableau never
   grows extra hole columns). The bridge between members is per-lemma
   and certificate-shaped: each theory conflict's blocking clause is
   guarded by a fresh literal and its core is remembered over the
   symbolic skeleton atoms; a later member re-instantiates the core with
   its own constants and asks the theory to re-refute it (replaying the
   constant-independent Farkas combination as a bounded check, audited
   under paranoid mode like any other lemma) before assuming the guard.
   Guards are plain assumption literals, never resolvable, so clauses
   the SAT core learns downstream of a guarded clause inherit the guard
   and stay vacuous for members whose replay fails — the soundness
   filter that lets one clause database serve every member.

   Answer transfer is deliberately one-sided. An Unsat under the
   member's concrete atoms, its encoding clauses, and lemmas re-proved
   for its constants is exactly what a fresh solve concludes. A Sat or
   Unknown cluster verdict is discarded and the member re-solved fresh:
   a warm instance's model or budget artifact could differ bit-for-bit
   from the fresh answer, and hit ≡ recompute is what the memo cache and
   the parallel pool rely on. Consultation is further gated by the
   cluster's last fresh verdict ([last_unsat]): Unsat streaks — exactly
   the threshold-probe pattern that dominates the workload — pay one
   warm check (propositional once the lemma set covers the streak)
   instead of a cold solve, while Sat streaks skip the cluster entirely
   instead of paying twice. *)
module Shared = struct
  let enabled_flag =
    ref
      (match Sys.getenv_opt "SIA_SHARE" with
       | Some ("0" | "false" | "no" | "off") -> false
       | Some _ | None -> true)

  module CTbl = Hashtbl.Make (struct
    type t = Formula.t * bool list * int * int

    let equal (f1, b1, r1, n1) (f2, b2, r2, n2) =
      r1 = r2 && n1 = n2 && b1 = b2 && Formula.equal f1 f2

    let hash = Key.id_hash
  end)

  (* A shared lemma: a theory conflict core learnt while solving one
     member, stored over the *skeleton* atoms (holes still symbolic) with
     the guard variable protecting its clause in the shared SAT instance.
     For a new member the core is re-instantiated with that member's
     constants and re-proved by the theory — the Farkas combination that
     refuted it is constant-independent, so the replay is a small
     bounded check, not a search — and only then is the guard assumed. *)
  type lemma = { score : (Atom.t * bool) list; guard : int }

  type csession = {
    c_inst : instance; (* encodes the skeleton formula, holes symbolic *)
    c_is_int : int -> bool;
    c_base_atoms : (Atom.t * int) list;
    c_atom_of_var : (int, Atom.t) Hashtbl.t; (* skeleton atom by SAT var *)
    mutable c_lemmas : lemma list; (* newest first *)
    mutable c_n_lemmas : int;
  }

  type cluster = {
    sk : Key.skeleton; (* representative; members differ in [holes] only *)
    mutable sess : csession option; (* created on first consultation *)
    mutable last_unsat : bool; (* last fresh same-skeleton verdict *)
  }

  type ticket = cluster option

  let clusters : cluster CTbl.t = CTbl.create 64

  (* Wholesale reset on overflow, like the memo cache; a lemma cap stops
     the shared clause database from growing past usefulness (beyond it,
     new conflicts still get throwaway guards, they are just no longer
     replayed for later members). *)
  let cluster_limit = 2_048
  let lemma_limit = 256
  let reset () = CTbl.reset clusters

  (* Hole variables are rational: they are pinned to integer constants by
     the member equalities, so branch and bound never needs to round
     them, and keeping them out of the integer layer avoids spurious
     Unknowns. *)
  let is_int_of sk =
    let bits = Array.of_list sk.Key.sbits in
    fun v -> v < Array.length bits && bits.(v)

  let session_of c =
    match c.sess with
    | Some s -> s
    | None ->
      let inst = make_instance c.sk.Key.sf in
      let atom_of_var = Hashtbl.create 64 in
      List.iter (fun (a, v) -> Hashtbl.replace atom_of_var v a) inst.atoms;
      let cs =
        {
          c_inst = inst;
          c_is_int = is_int_of c.sk;
          c_base_atoms = inst.atoms;
          c_atom_of_var = atom_of_var;
          c_lemmas = [];
          c_n_lemmas = 0;
        }
      in
      c.sess <- Some cs;
      totals := { !totals with clusters = !totals.clusters + 1 };
      cs

  (* Replace a skeleton atom's hole variables by this member's constants.
     The variable list is computed before the first substitution, so
     later substitutions cannot hide holes from the walk. *)
  let instantiate n_vars holes a =
    List.fold_left
      (fun a v ->
        if v >= n_vars then
          Atom.subst a v (Linexpr.const holes.(v - n_vars))
        else a)
      a (Atom.vars a)

  (* Try to answer a canonical query from its cluster. Returns the
     cluster ticket (for [observe]) and [Some Unsat] on a transferable
     verdict. The caller counted the query already; the cluster run's
     search cost lands in the usual counters.

     The consult run solves in *concrete* space: the shared instance's
     atom variables are reinterpreted as this member's instantiated
     atoms, so each theory check costs what a fresh solve's would — while
     the propositional structure, the SAT core's learnt clauses, and
     every guarded lemma whose replay succeeds carry over from earlier
     members. After a warm-up member, an Unsat streak over one skeleton
     is decided propositionally, with no theory rounds at all. Only
     Unsat transfers: it is a consequence of the member's own clauses
     plus lemmas re-proved for the member's constants, so it coincides
     with what a fresh solve concludes; Sat models and Unknowns are
     discarded and re-derived fresh, keeping observable answers
     bit-identical to sharing-off runs. *)
  let consult (k : Key.canonical) : ticket * result option =
    if not !enabled_flag then (None, None)
    else
      match Key.skeletonize k with
      | None -> (None, None)
      | Some sk -> (
        let ck = Key.skeleton_id sk in
        let c =
          match CTbl.find_opt clusters ck with
          | Some c -> c
          | None ->
            if CTbl.length clusters >= cluster_limit then CTbl.reset clusters;
            let c = { sk; sess = None; last_unsat = false } in
            CTbl.add clusters ck c;
            c
        in
        if not c.last_unsat then (Some c, None)
        else
          match
            let cs = session_of c in
            let n_vars = sk.Key.n_vars and holes = sk.Key.holes in
            let inst_atom a = instantiate n_vars holes a in
            let atoms =
              List.map (fun (a, v) -> (inst_atom a, v)) cs.c_base_atoms
            in
            (* Two skeleton atoms can collapse onto one concrete atom when
               a member repeats a constant; the atom -> variable mapping
               would then be ambiguous. Rare: skip the consult. *)
            let seen = AtomTbl.create 64 in
            let collision =
              List.exists
                (fun (a, _) ->
                  AtomTbl.mem seen a
                  ||
                  (AtomTbl.add seen a ();
                   false))
                atoms
            in
            if collision then None
            else begin
              let is_int = cs.c_is_int in
              (* Farkas replay: a stored lemma is valid for this member
                 iff its re-instantiated core is still theory-infeasible.
                 Under paranoid auditing the replay's certificate goes
                 through the same independent checker as any other lemma,
                 so a guard is never assumed on an unaudited proof. *)
              let live =
                List.filter_map
                  (fun { score; guard } ->
                    let core =
                      List.map (fun (a, p) -> (inst_atom a, p)) score
                    in
                    match
                      Theory.check_cert ~is_int
                        ~node_limit:sk.Key.s_node_limit core
                    with
                    | Theory.Unsat _, cert ->
                      (match cs.c_inst.aud with
                       | Some a ->
                         let cert =
                           match cert with
                           | Some cert -> cert
                           | None ->
                             raise
                               (Cert.Certificate_error
                                  "shared lemma replay without certificate")
                         in
                         audited `Lemma (fun () -> a.on_lemma ~is_int core cert)
                       | None -> ());
                      Some (Sat.pos guard)
                    | (Theory.Sat _ | Theory.Unknown), _ -> None)
                  cs.c_lemmas
              in
              let lemma_guard core_vars =
                let g = Sat.new_var cs.c_inst.sat in
                (if cs.c_n_lemmas < lemma_limit then
                   match
                     List.map
                       (fun (v, p) -> (Hashtbl.find cs.c_atom_of_var v, p))
                       core_vars
                   with
                   | score ->
                     cs.c_lemmas <- { score; guard = g } :: cs.c_lemmas;
                     cs.c_n_lemmas <- cs.c_n_lemmas + 1
                   | exception Not_found -> ());
                g
              in
              let kf, _, _, _ = k.Key.id in
              let lemmas0 = !theory_lemma_count in
              let r =
                run_instance ~max_rounds:sk.Key.s_max_rounds
                  ~node_limit:sk.Key.s_node_limit ~assumptions:live
                  ~theory_atoms:atoms ~model_formula:kf ~lemma_guard
                  ~is_int cs.c_inst
              in
              totals :=
                {
                  !totals with
                  shared_lemmas =
                    !totals.shared_lemmas + (!theory_lemma_count - lemmas0);
                };
              match r with
              | Unsat ->
                totals := { !totals with shared_hits = !totals.shared_hits + 1 };
                if Trace.enabled () then
                  Trace.instant "share.hit"
                    ~args:[ ("key", Trace.Int (Key.id_hash ck)) ];
                Some Unsat
              | Sat _ | Unknown ->
                totals :=
                  { !totals with shared_misses = !totals.shared_misses + 1 };
                if Trace.enabled () then
                  Trace.instant "share.miss"
                    ~args:[ ("key", Trace.Int (Key.id_hash ck)) ];
                None
            end
          with
          | r -> (Some c, r)
          | exception Cert.Certificate_error _ ->
            (* A certificate failed its audit inside the shared session:
               retire the session and fall back to fresh solving for this
               and subsequent members (the rejection was already counted
               by [audited]). *)
            c.sess <- None;
            c.last_unsat <- false;
            (Some c, None))

  (* Record the fresh verdict of a consulted-or-registered query so the
     next same-skeleton member knows whether consultation is worthwhile. *)
  let observe (t : ticket) r =
    match t with
    | None -> ()
    | Some c -> c.last_unsat <- (match r with Unsat -> true | _ -> false)
end

let set_sharing b = Shared.enabled_flag := b
let sharing () = !Shared.enabled_flag

(* Downstream layers (the serve-mode rewrite cache) hold derived state
   that must not outlive the solver caches it was computed from; they
   register a flush here rather than the solver depending on them. *)
let reset_hooks : (unit -> unit) list ref = ref []
let on_reset_caches f = reset_hooks := f :: !reset_hooks

let reset_caches () =
  Memo.reset memo;
  Shared.reset ();
  List.iter (fun f -> f ()) !reset_hooks

let solve ?(max_rounds = default_max_rounds) ~is_int f =
  let f = Formula.nnf f in
  bump_query ();
  match f with
  | Formula.True ->
    count_answer (Sat (List.map (fun v -> (v, Rat.zero)) (Formula.vars f)))
  | Formula.False -> count_answer Unsat
  | _ -> (
    let k = memo_key ~is_int ~max_rounds ~node_limit:default_node_limit f in
    match memo_find k with
    | Some r ->
      bump_cache_hit ();
      if Trace.enabled () then
        Trace.instant "memo.hit"
          ~args:[ ("key", Trace.Int (Key.id_hash k.Key.id)) ];
      count_answer r
    | None -> (
      if Trace.enabled () then
        Trace.instant "memo.miss"
          ~args:[ ("key", Trace.Int (Key.id_hash k.Key.id)) ];
      match Shared.consult k with
      | _, Some r ->
        memo_store k r;
        count_answer r
      | ticket, None ->
        let r = run_instance ~max_rounds ~is_int (make_instance f) in
        Shared.observe ticket r;
        memo_store k r;
        count_answer r))

(* Unmemoized one-shot solve: in paranoid mode a memo hit replays the
   answer of an earlier (audited) computation without re-auditing, so
   callers that must certify {e this} verdict — [Rewrite.audit], the fuzz
   suite — bypass the cache. *)
let solve_fresh ?max_rounds ?node_limit ~is_int f =
  let f = Formula.nnf f in
  bump_query ();
  match f with
  | Formula.True ->
    count_answer (Sat (List.map (fun v -> (v, Rat.zero)) (Formula.vars f)))
  | Formula.False -> count_answer Unsat
  | _ ->
    count_answer (run_instance ?max_rounds ?node_limit ~is_int (make_instance f))

(* Exclude the model (on [distinct_on]) from later queries — permanently,
   or only while the [guard] literal is assumed. Returns the fresh
   disequality atoms, which join the abstraction and must be
   theory-checked by every query the clause is live for. *)
let block_model ?guard inst ~distinct_on m =
  let pairs =
    List.concat_map
      (fun v ->
        let value = Linexpr.const (model_value m v) in
        let lt = Atom.mk_lt (Linexpr.var v) value in
        let gt = Atom.mk_gt (Linexpr.var v) value in
        [ (lt, atom_var inst lt); (gt, atom_var inst gt) ])
      distinct_on
  in
  let lits = List.map (fun (_, v) -> Sat.pos v) pairs in
  Sat.add_clause inst.sat (match guard with Some g -> g :: lits | None -> lits);
  pairs

let solve_many ?max_rounds ~is_int ~count ~distinct_on f =
  if count <= 0 then ([], false)
  else begin
    let f = Formula.nnf f in
    match f with
    | Formula.False ->
      bump_query ();
      ignore (count_answer Unsat);
      ([], true)
    | _ -> begin
      let inst = make_instance f in
      let models = ref [] in
      let n = ref 0 in
      let exhausted = ref false in
      while !n < count && not !exhausted do
        bump_query ();
        match count_answer (run_instance ?max_rounds ~is_int inst) with
        | Unsat -> exhausted := true
        | Unknown -> exhausted := true
        | Sat m ->
          models := m :: !models;
          incr n;
          (* Block this model on the distinguished variables: the next
             model must differ on at least one of them. The fresh
             disequality atoms join the abstraction and are theory-checked
             like any other literal. *)
          if distinct_on = [] then exhausted := true
          else ignore (block_model inst ~distinct_on m)
      done;
      (List.rev !models, !exhausted)
    end
  end

let entails ~is_int p q =
  match solve ~is_int (Formula.and_ [ p; Formula.not_ q ]) with
  | Sat _ -> Some false
  | Unsat -> Some true
  | Unknown -> None

(* ------------------------------------------------------------------ *)
(* Persistent sessions                                                 *)
(* ------------------------------------------------------------------ *)

module Session = struct
  type session = {
    inst : instance;
    is_int : int -> bool;
    (* NNF formula -> activation literal and the formula's atoms *)
    lits : (Sat.lit * (Atom.t * int) list) FTbl.t;
    base_atoms : (Atom.t * int) list;
    (* Formulas permanently asserted via [add_clause], with their atoms:
       always theory-relevant and always part of model validation. *)
    mutable asserted : Formula.t list;
    mutable asserted_atoms : (Atom.t * int) list;
  }

  type t = session

  let create ~is_int base =
    let base = Formula.nnf base in
    let inst = make_instance base in
    {
      inst;
      is_int;
      lits = FTbl.create 64;
      base_atoms = inst.atoms;
      asserted = [];
      asserted_atoms = [];
    }

  (* Activation literal for a formula: encoded once per session, then
     reused by every later query that assumes or asserts it. Because the
     encoding is implication-only, an unassumed activation literal leaves
     its clauses vacuously satisfiable. *)
  let lit t f =
    let f = Formula.nnf f in
    match FTbl.find_opt t.lits f with
    | Some entry -> entry
    | None ->
      let t0 = Sys.time () in
      let l = Trace.span "smt.encode" (fun () -> encode t.inst.sat (atom_var t.inst) f) in
      bump_encoding (Sys.time () -. t0);
      let entry =
        (l, List.map (fun a -> (a, atom_var t.inst a)) (Formula.atoms f))
      in
      FTbl.add t.lits f entry;
      entry

  let add_clause t f =
    let l, atoms = lit t f in
    Sat.add_clause t.inst.sat [ l ];
    t.asserted <- f :: t.asserted;
    t.asserted_atoms <- List.rev_append atoms t.asserted_atoms

  (* Atoms the theory must check for this query: base, permanently
     asserted formulas, current assumptions, and (during enumeration) the
     current call's model-blocking clauses, deduplicated. Stale atoms
     from other queries are deliberately left out — see [run_instance]. *)
  let relevant_atoms t query_atoms =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun (_, v) ->
        if Hashtbl.mem seen v then false
        else begin
          Hashtbl.add seen v ();
          true
        end)
      (t.base_atoms @ t.asserted_atoms @ query_atoms)

  (* [extra_lits]/[extra_atoms] carry raw per-call state (the enumeration
     guard and its blocking atoms) that has no formula counterpart.

     Queries without per-call state are answered through the global memo
     cache: the key is the full conjunction base ∧ asserted ∧ assumptions,
     canonicalized (see the memo above), so a threshold probe repeated on
     the sibling session of another column subset — or by a one-shot
     [solve] of the same conjunction — costs a table lookup. Enumeration
     calls ([extra_lits ≠ []]) bypass the cache: their answer depends on
     blocking clauses that exist only inside that call. *)
  (* Per-query state that is invariant across the steps of one
     enumeration: NNF'd assumptions, their activation literals and atoms,
     the model-validation formula list and its variable closure. Computed
     once by [prep]; [solve_many_under] re-uses it for every model of the
     call instead of re-walking hundreds of exclusion formulas per step. *)
  type prepped = {
    p_assumptions : Formula.t list; (* NNF *)
    p_lits : Sat.lit list;
    p_atoms : (Atom.t * int) list;
    p_check : Formula.t list;
    p_fvars : int list;
  }

  let prep t assumptions =
    let assumptions = List.map Formula.nnf assumptions in
    let encoded = List.map (lit t) assumptions in
    let check = t.asserted @ assumptions in
    let fvars =
      match check with
      | [] -> t.inst.fvars
      | _ ->
        List.sort_uniq Stdlib.compare
          (List.rev_append (List.concat_map Formula.vars check) t.inst.fvars)
    in
    {
      p_assumptions = assumptions;
      p_lits = List.map fst encoded;
      p_atoms = List.concat_map snd encoded;
      p_check = check;
      p_fvars = fvars;
    }

  let run_prepped ?(max_rounds = default_max_rounds) ?node_limit
      ?(extra_lits = []) ?(extra_atoms = []) t p =
    bump_query ();
    let memo_k =
      if extra_lits = [] && extra_atoms = [] then
        Some
          (memo_key ~is_int:t.is_int ~max_rounds
             ~node_limit:(Option.value node_limit ~default:default_node_limit)
             (Formula.nnf
                (Formula.and_
                   (t.inst.formula
                   :: List.rev_append t.asserted p.p_assumptions))))
      else None
    in
    match Option.bind memo_k memo_find with
    | Some r ->
      bump_cache_hit ();
      (if Trace.enabled () then
         match memo_k with
         | Some k ->
           Trace.instant "memo.hit"
             ~args:[ ("key", Trace.Int (Key.id_hash k.Key.id)) ]
         | None -> ());
      count_answer r
    | None -> (
      (if Trace.enabled () then
         match memo_k with
         | Some k ->
           Trace.instant "memo.miss"
             ~args:[ ("key", Trace.Int (Key.id_hash k.Key.id)) ]
         | None -> ());
      let ticket, shared =
        match memo_k with
        | Some k -> Shared.consult k
        | None -> (None, None)
      in
      match shared with
      | Some r ->
        (match memo_k with Some k -> memo_store k r | None -> ());
        count_answer r
      | None ->
        let r =
          run_instance ~max_rounds ?node_limit
            ~assumptions:(extra_lits @ p.p_lits)
            ~check:p.p_check ~fvars:p.p_fvars
            ~theory_atoms:(relevant_atoms t (extra_atoms @ p.p_atoms))
            ~is_int:t.is_int t.inst
        in
        Shared.observe ticket r;
        (match memo_k with Some k -> memo_store k r | None -> ());
        count_answer r)

  let solve_under ?max_rounds ?node_limit ?(assumptions = []) t =
    run_prepped ?max_rounds ?node_limit t (prep t assumptions)

  (* Model-blocking clauses are scoped to this call by a fresh activation
     literal: assumed while enumerating, vacuous afterwards. The session's
     later theory checks therefore do not pay for past enumerations;
     callers that need earlier models excluded again pass explicit
     exclusion assumptions. *)
  let solve_many_under ?max_rounds ?(assumptions = []) ~count ~distinct_on t =
    if count <= 0 then ([], false)
    else begin
      let p = prep t assumptions in
      let guard = Sat.new_var t.inst.sat in
      let blocked = ref [] in
      let models = ref [] in
      let n = ref 0 in
      let exhausted = ref false in
      while !n < count && not !exhausted do
        match
          run_prepped ?max_rounds ~extra_lits:[ Sat.pos guard ]
            ~extra_atoms:!blocked t p
        with
        | Unsat | Unknown -> exhausted := true
        | Sat m ->
          models := m :: !models;
          incr n;
          if distinct_on = [] then exhausted := true
          else
            blocked :=
              List.rev_append
                (block_model ~guard:(Sat.neg_lit guard) t.inst ~distinct_on m)
                !blocked
      done;
      (* Retire the guard: its blocking clauses are satisfied at level 0
         from now on and never constrain another query. *)
      Sat.add_clause t.inst.sat [ Sat.neg_lit guard ];
      (List.rev !models, !exhausted)
    end

  let n_encodings t = FTbl.length t.lits
end
