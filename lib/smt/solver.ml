open Sia_numeric
module Trace = Sia_trace.Trace

type model = (int * Rat.t) list

type result =
  | Sat of model
  | Unsat
  | Unknown

let result_label = function
  | Sat _ -> "sat"
  | Unsat -> "unsat"
  | Unknown -> "unknown"

let model_value m v = match List.assoc_opt v m with Some r -> r | None -> Rat.zero

(* Strict variant for call sites that require a total model (the
   certificate checker, countermodel extraction): a missing assignment is
   a bug, not a zero. *)
let model_value_strict m v =
  match List.assoc_opt v m with
  | Some r -> r
  | None ->
    invalid_arg
      (Printf.sprintf "Solver.model_value_strict: variable %d unassigned" v)

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  queries : int;
  sat_answers : int;
  unsat_answers : int;
  unknown_answers : int;
  cache_hits : int;
  encodings : int;
  instances : int;
  theory_rounds : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  pivots : int;
  tableau_rebuilds : int;
  reused_rounds : int;
  encode_time : float;
  search_time : float;
  theory_time : float;
  cert_lemmas : int;
  cert_proofs : int;
  cert_models : int;
  cert_rejections : int;
  cert_time : float;
}

let stats_zero =
  {
    queries = 0;
    sat_answers = 0;
    unsat_answers = 0;
    unknown_answers = 0;
    cache_hits = 0;
    encodings = 0;
    instances = 0;
    theory_rounds = 0;
    conflicts = 0;
    propagations = 0;
    restarts = 0;
    pivots = 0;
    tableau_rebuilds = 0;
    reused_rounds = 0;
    encode_time = 0.0;
    search_time = 0.0;
    theory_time = 0.0;
    cert_lemmas = 0;
    cert_proofs = 0;
    cert_models = 0;
    cert_rejections = 0;
    cert_time = 0.0;
  }

let totals = ref stats_zero
let stats () = !totals
let reset_stats () = totals := stats_zero

let stats_add a b =
  {
    queries = a.queries + b.queries;
    sat_answers = a.sat_answers + b.sat_answers;
    unsat_answers = a.unsat_answers + b.unsat_answers;
    unknown_answers = a.unknown_answers + b.unknown_answers;
    cache_hits = a.cache_hits + b.cache_hits;
    encodings = a.encodings + b.encodings;
    instances = a.instances + b.instances;
    theory_rounds = a.theory_rounds + b.theory_rounds;
    conflicts = a.conflicts + b.conflicts;
    propagations = a.propagations + b.propagations;
    restarts = a.restarts + b.restarts;
    pivots = a.pivots + b.pivots;
    tableau_rebuilds = a.tableau_rebuilds + b.tableau_rebuilds;
    reused_rounds = a.reused_rounds + b.reused_rounds;
    encode_time = a.encode_time +. b.encode_time;
    search_time = a.search_time +. b.search_time;
    theory_time = a.theory_time +. b.theory_time;
    cert_lemmas = a.cert_lemmas + b.cert_lemmas;
    cert_proofs = a.cert_proofs + b.cert_proofs;
    cert_models = a.cert_models + b.cert_models;
    cert_rejections = a.cert_rejections + b.cert_rejections;
    cert_time = a.cert_time +. b.cert_time;
  }

(* Merge a delta computed elsewhere — a worker process's [stats_since]
   over its lifetime — into this process's totals. The pool calls this
   once per worker so that [stats ()] in the parent reflects work done on
   its behalf in forked children. *)
let absorb_stats s = totals := stats_add !totals s

let stats_since s0 =
  let s = !totals in
  {
    queries = s.queries - s0.queries;
    sat_answers = s.sat_answers - s0.sat_answers;
    unsat_answers = s.unsat_answers - s0.unsat_answers;
    unknown_answers = s.unknown_answers - s0.unknown_answers;
    cache_hits = s.cache_hits - s0.cache_hits;
    encodings = s.encodings - s0.encodings;
    instances = s.instances - s0.instances;
    theory_rounds = s.theory_rounds - s0.theory_rounds;
    conflicts = s.conflicts - s0.conflicts;
    propagations = s.propagations - s0.propagations;
    restarts = s.restarts - s0.restarts;
    pivots = s.pivots - s0.pivots;
    tableau_rebuilds = s.tableau_rebuilds - s0.tableau_rebuilds;
    reused_rounds = s.reused_rounds - s0.reused_rounds;
    encode_time = s.encode_time -. s0.encode_time;
    search_time = s.search_time -. s0.search_time;
    theory_time = s.theory_time -. s0.theory_time;
    cert_lemmas = s.cert_lemmas - s0.cert_lemmas;
    cert_proofs = s.cert_proofs - s0.cert_proofs;
    cert_models = s.cert_models - s0.cert_models;
    cert_rejections = s.cert_rejections - s0.cert_rejections;
    cert_time = s.cert_time -. s0.cert_time;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "queries=%d (sat=%d unsat=%d unknown=%d cached=%d) encodings=%d \
     instances=%d theory-rounds=%d (reused=%d rebuilds=%d) conflicts=%d \
     propagations=%d restarts=%d pivots=%d encode=%.3fs search=%.3fs \
     (theory=%.3fs) certs=%d/%d/%d rejected=%d cert=%.3fs"
    s.queries s.sat_answers s.unsat_answers s.unknown_answers s.cache_hits
    s.encodings s.instances s.theory_rounds s.reused_rounds s.tableau_rebuilds
    s.conflicts s.propagations s.restarts s.pivots s.encode_time s.search_time
    s.theory_time s.cert_lemmas s.cert_proofs s.cert_models s.cert_rejections
    s.cert_time

let bump_query () = totals := { !totals with queries = !totals.queries + 1 }

let bump_cache_hit () =
  totals := { !totals with cache_hits = !totals.cache_hits + 1 }

let bump_encoding dt =
  totals :=
    {
      !totals with
      encodings = !totals.encodings + 1;
      encode_time = !totals.encode_time +. dt;
    }

let count_answer r =
  (totals :=
     match r with
     | Sat _ -> { !totals with sat_answers = !totals.sat_answers + 1 }
     | Unsat -> { !totals with unsat_answers = !totals.unsat_answers + 1 }
     | Unknown -> { !totals with unknown_answers = !totals.unknown_answers + 1 });
  r

(* ------------------------------------------------------------------ *)
(* Certificate auditing                                                *)
(* ------------------------------------------------------------------ *)

(* The solver produces certificates; checking them lives in [lib/check],
   which must not be a dependency of this library (it would invert the
   trust relationship: the checker depends on the formula/atom types
   only, not on solver internals). The checker therefore injects itself
   here as an [auditor] factory; in paranoid mode every new instance gets
   its own auditor, which receives the full proof-event stream, every
   theory lemma with its certificate, and every model before it is
   returned. Auditors raise {!Cert.Certificate_error} on a bad
   certificate — verdicts never silently pass unaudited. *)
type auditor = {
  on_sat_event : Cert.sat_event -> unit;
  on_lemma : is_int:(int -> bool) -> Theory.lit list -> Cert.theory_cert -> unit;
  on_model : (int -> Rat.t) -> Formula.t list -> unit;
}

let paranoid_flag = ref false
let set_paranoid b = paranoid_flag := b
let paranoid () = !paranoid_flag

let auditor_factory : (unit -> auditor) option ref = ref None
let set_auditor_factory f = auditor_factory := Some f

let new_auditor () =
  if !paranoid_flag then
    match !auditor_factory with Some f -> Some (f ()) | None -> None
  else None

let bump_cert_time dt =
  totals := { !totals with cert_time = !totals.cert_time +. dt }

(* Run one audit step, timing it and counting the outcome. Certificate
   rejections propagate to the caller: a rejection means either a solver
   soundness bug or a checker bug, and both must be loud. *)
let audited kind f =
  let t0 = Sys.time () in
  match f () with
  | () -> (
    bump_cert_time (Sys.time () -. t0);
    match kind with
    | `Event -> ()
    | `Proof -> totals := { !totals with cert_proofs = !totals.cert_proofs + 1 }
    | `Lemma -> totals := { !totals with cert_lemmas = !totals.cert_lemmas + 1 }
    | `Model -> totals := { !totals with cert_models = !totals.cert_models + 1 })
  | exception e ->
    bump_cert_time (Sys.time () -. t0);
    (match e with
     | Cert.Certificate_error _ ->
       totals := { !totals with cert_rejections = !totals.cert_rejections + 1 }
     | _ -> ());
    raise e

let traced aud ev =
  audited
    (match ev with Cert.Final _ -> `Proof | Cert.Given _ | Cert.Learnt _ -> `Event)
    (fun () -> aud.on_sat_event ev)

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

(* Tseitin encoding, implication direction only (sufficient for
   satisfiability): the formula is in NNF, so it is monotone in its
   literals, except for Dvd atoms which may occur under both polarities and
   whose assignments are therefore always passed to the theory.

   The implication-only direction is also what makes the returned root
   literal usable as an activation literal: assuming the root turns the
   formula on, while leaving it unassumed makes its clauses vacuous. *)
let encode sat atom_var f =
  let rec enc f =
    match f with
    | Formula.True ->
      let p = Sat.new_var sat in
      Sat.pos p
    | Formula.False ->
      let p = Sat.new_var sat in
      Sat.add_clause sat [ Sat.neg_lit p ];
      Sat.pos p
    | Formula.Atom a -> Sat.pos (atom_var a)
    | Formula.Not (Formula.Atom (Atom.Dvd _ as a)) -> Sat.neg_lit (atom_var a)
    | Formula.Not _ -> invalid_arg "Solver.encode: formula not in NNF"
    | Formula.And fs ->
      let p = Sat.new_var sat in
      List.iter (fun g -> Sat.add_clause sat [ Sat.neg_lit p; enc g ]) fs;
      Sat.pos p
    | Formula.Or fs ->
      let p = Sat.new_var sat in
      let lits = List.map enc fs in
      Sat.add_clause sat (Sat.neg_lit p :: lits);
      Sat.pos p
  in
  enc f

type instance = {
  sat : Sat.t;
  atom_tbl : (Atom.t, int) Hashtbl.t;
  mutable atoms : (Atom.t * int) list;
  fvars : int list;
  formula : Formula.t; (* NNF *)
  aud : auditor option;
}

let make_instance f =
  Trace.span "smt.encode"
  @@ fun () ->
  let t0 = Sys.time () in
  let sat = Sat.create () in
  (* The tracer must be live before the first clause of the encoding, or
     the replayed clause set would be incomplete. *)
  let aud = new_auditor () in
  (match aud with Some a -> Sat.set_tracer sat (traced a) | None -> ());
  let atom_tbl = Hashtbl.create 64 in
  let inst =
    { sat; atom_tbl; atoms = []; fvars = Formula.vars f; formula = f; aud }
  in
  let atom_var a =
    match Hashtbl.find_opt atom_tbl a with
    | Some v -> v
    | None ->
      let v = Sat.new_var sat in
      Hashtbl.add atom_tbl a v;
      inst.atoms <- (a, v) :: inst.atoms;
      v
  in
  let root = encode sat atom_var f in
  Sat.add_clause sat [ root ];
  totals := { !totals with instances = !totals.instances + 1 };
  bump_encoding (Sys.time () -. t0);
  inst

let atom_var inst a =
  match Hashtbl.find_opt inst.atom_tbl a with
  | Some v -> v
  | None ->
    let v = Sat.new_var inst.sat in
    Hashtbl.add inst.atom_tbl a v;
    inst.atoms <- (a, v) :: inst.atoms;
    v

(* One DPLL(T) run on the current clause set, optionally under assumption
   literals. [check] lists extra formulas (beyond [inst.formula]) that the
   caller asserted via assumptions: their variables join the model padding
   and the returned model is validated against them too.

   [theory_atoms], when given, restricts which atoms are passed to the
   theory solver. On a long-lived session only the atoms of the base
   formula, of the current assumptions, and of the model-blocking clauses
   are relevant to the query; stale atoms from earlier queries stay
   boolean-assigned (phase saving) but constraining the arithmetic model
   with them would make every simplex call grow with session age — and
   their values are free as far as this query's formulas are concerned.
   Soundness is unchanged: the encoding is monotone NNF, so root truth
   only rests on the checked atoms, and the model is still validated
   against the full formulas below. *)
let run_instance ?(max_rounds = 50_000) ?node_limit ?(assumptions = [])
    ?(check = []) ?theory_atoms ~is_int inst =
  if Trace.enabled () then
    Trace.begin_span "smt.solve"
      ~args:
        [
          ("atoms", Trace.Int (List.length inst.atoms));
          ("assumptions", Trace.Int (List.length assumptions));
        ];
  let t0 = Sys.time () in
  let c0 = Sat.n_conflicts inst.sat in
  let p0 = Sat.n_propagations inst.sat in
  let r0 = Sat.n_restarts inst.sat in
  let pv0 = Simplex.pivot_count () in
  let ru0 = Theory.reused_round_count () in
  let rb0 = Theory.rebuild_count () in
  let fvars =
    match check with
    | [] -> inst.fvars
    | _ ->
      List.sort_uniq Stdlib.compare
        (List.rev_append (List.concat_map Formula.vars check) inst.fvars)
  in
  let atoms = match theory_atoms with Some l -> l | None -> inst.atoms in
  (* One theory session per DPLL(T) run: consecutive theory rounds share
     the incremental tableau, diffing each round's literal set against the
     previous one. The literal universe is fixed for the run ([atoms]), so
     its maximum variable safely separates input ids from the session's
     divisibility witnesses. *)
  let max_var =
    List.fold_left
      (fun acc (a, _) -> List.fold_left max acc (Atom.vars a))
      0 atoms
  in
  let tsession = Theory.create_session ~is_int ?node_limit ~max_var () in
  let rec loop round =
    if round > max_rounds then Unknown
    else if not (Trace.span "sat.search" (fun () -> Sat.solve ~assumptions inst.sat))
    then Unsat
    else begin
      (* Theory literals from the boolean model: positive Lin atoms, and
         Dvd atoms under either polarity. *)
      let lits =
        List.filter_map
          (fun (a, v) ->
            let value = Sat.value inst.sat v in
            match a with
            | Atom.Lin _ -> if value then Some (a, true) else None
            | Atom.Dvd _ -> Some (a, value))
          atoms
      in
      let tt0 = Sys.time () in
      if Trace.enabled () then
        Trace.begin_span "theory.check"
          ~args:
            [ ("round", Trace.Int round); ("lits", Trace.Int (List.length lits)) ];
      let verdict, cert =
        match Theory.check_cert_session tsession lits with
        | vc -> vc
        | exception e ->
          if Trace.enabled () then
            Trace.end_span "theory.check"
              ~args:[ ("exn", Trace.String (Printexc.to_string e)) ];
          raise e
      in
      if Trace.enabled () then
        Trace.end_span "theory.check"
          ~args:
            [
              ( "verdict",
                Trace.String
                  (match verdict with
                   | Theory.Sat _ -> "sat"
                   | Theory.Unsat _ -> "unsat"
                   | Theory.Unknown -> "unknown") );
            ];
      totals :=
        {
          !totals with
          theory_rounds = !totals.theory_rounds + 1;
          theory_time = !totals.theory_time +. (Sys.time () -. tt0);
        };
      match verdict with
      | Theory.Unknown -> Unknown
      | Theory.Sat m ->
        let assigned = Hashtbl.create 64 in
        List.iter (fun (v, _) -> Hashtbl.replace assigned v ()) m;
        let m =
          List.fold_left
            (fun acc v ->
              if Hashtbl.mem assigned v then acc
              else begin
                Hashtbl.replace assigned v ();
                (v, Rat.zero) :: acc
              end)
            m fvars
        in
        (* The model is padded over every variable of the formulas below,
           so the strict lookup cannot raise on a correct model — and a
           model that misses one of their variables is exactly the bug the
           strict lookup exists to expose. *)
        let lookup = model_value_strict m in
        (match inst.aud with
         | Some a ->
           (* Paranoid: the independent evaluator replaces the inline
              backstop (it checks the same formulas with its own atom
              semantics and raises {!Cert.Certificate_error}). *)
           audited `Model (fun () -> a.on_model lookup (inst.formula :: check))
         | None ->
           if
             not
               (Formula.eval inst.formula lookup
               && List.for_all (fun f -> Formula.eval f lookup) check)
           then
             failwith "Solver.solve: internal error, model does not satisfy formula");
        Sat m
      | Theory.Unsat core ->
        (match inst.aud with
         | Some a ->
           let cert =
             match cert with
             | Some c -> c
             | None ->
               raise (Cert.Certificate_error "theory Unsat without certificate")
           in
           audited `Lemma (fun () -> a.on_lemma ~is_int core cert)
         | None -> ());
        let blocking =
          List.map
            (fun (a, polarity) ->
              let v = Hashtbl.find inst.atom_tbl a in
              if polarity then Sat.neg_lit v else Sat.pos v)
            core
        in
        Sat.add_clause inst.sat blocking;
        loop (round + 1)
    end
  in
  let r =
    match loop 0 with
    | r -> r
    | exception e ->
      if Trace.enabled () then
        Trace.end_span "smt.solve"
          ~args:[ ("exn", Trace.String (Printexc.to_string e)) ];
      raise e
  in
  totals :=
    {
      !totals with
      search_time = !totals.search_time +. (Sys.time () -. t0);
      conflicts = !totals.conflicts + (Sat.n_conflicts inst.sat - c0);
      propagations = !totals.propagations + (Sat.n_propagations inst.sat - p0);
      restarts = !totals.restarts + (Sat.n_restarts inst.sat - r0);
      pivots = !totals.pivots + (Simplex.pivot_count () - pv0);
      reused_rounds = !totals.reused_rounds + (Theory.reused_round_count () - ru0);
      tableau_rebuilds = !totals.tableau_rebuilds + (Theory.rebuild_count () - rb0);
    };
  if Trace.enabled () then
    Trace.end_span "smt.solve"
      ~args:
        [
          ("result", Trace.String (result_label r));
          ("conflicts", Trace.Int (Sat.n_conflicts inst.sat - c0));
          ("pivots", Trace.Int (Simplex.pivot_count () - pv0));
        ];
  r

(* ------------------------------------------------------------------ *)
(* Memoized one-shot solving                                           *)
(* ------------------------------------------------------------------ *)

(* Verdicts are memoized on a *canonical* key so that the syntactically
   different ways CEGIS asks the same question coincide:

   - the formula is order-normalized ({!Formula.canon}: And/Or children
     sorted and deduplicated), so [base ∧ p ∧ q] and [q ∧ base ∧ p] share
     an entry regardless of how a session interleaved its assertions;
   - variables are alpha-renamed to 0,1,2,... in first-occurrence order
     over the canonical formula, so fresh-variable numbering (per-attempt
     [Encode] environments allocate from a moving counter) does not split
     otherwise identical queries;
   - the [is_int] fingerprint of the canonical variables joins the key
     (the only part of [is_int] the answer can depend on);
   - the resource limits ([max_rounds], theory [node_limit]) join the key,
     so a cached verdict is always one the same call would have computed —
     without them a warm-session Sat could answer for a colder query that
     would itself have returned Unknown, which would make cached and
     recomputed runs observably different (the parallel pool relies on
     hit ≡ recompute for its determinism guarantee).

   Only Sat/Unsat verdicts are cached — Unknown is a resource artifact,
   not a truth. Models are stored in canonical variable space and
   translated back through the renaming on a hit. The cache has no
   invalidation rule by construction: a query's answer depends on nothing
   but the key. *)
module Memo = Hashtbl.Make (struct
  type t = Formula.t * bool list * int * int

  let equal (f1, b1, r1, n1) (f2, b2, r2, n2) =
    r1 = r2 && n1 = n2 && b1 = b2 && Formula.equal f1 f2

  let hash (f, b, r, n) = Hashtbl.hash (Formula.hash f, b, r, n)
end)

let memo : result Memo.t = Memo.create 1024

(* Bound the cache; wholesale reset on overflow keeps it O(1) amortized
   and is plenty for the CEGIS workloads (a run rarely exceeds a few
   thousand distinct formulas). *)
let memo_limit = 16_384
let default_max_rounds = 50_000
let default_node_limit = 4000 (* Theory.check_cert's default *)

type memo_key = {
  key : Formula.t * bool list * int * int;
  fwd : (int, int) Hashtbl.t; (* original var -> canonical var *)
  back : int array; (* canonical var -> original var *)
}

let memo_key ~is_int ~max_rounds ~node_limit f =
  let f = Formula.canon f in
  let fwd = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun a ->
      List.iter
        (fun v ->
          if not (Hashtbl.mem fwd v) then begin
            Hashtbl.add fwd v (Hashtbl.length fwd);
            order := v :: !order
          end)
        (Atom.vars a))
    (Formula.atoms f);
  let back = Array.of_list (List.rev !order) in
  let kf = Formula.map_vars (Hashtbl.find fwd) f in
  let bits = Array.to_list (Array.map is_int back) in
  { key = (kf, bits, max_rounds, node_limit); fwd; back }

let memo_find k =
  match Memo.find_opt memo k.key with
  | None | Some Unknown -> None
  | Some Unsat -> Some Unsat
  | Some (Sat m) -> Some (Sat (List.map (fun (cv, r) -> (k.back.(cv), r)) m))

let memo_store k r =
  match r with
  | Unknown -> ()
  | Unsat | Sat _ ->
    let r =
      match r with
      | Sat m ->
        (* Store in canonical space. Variables outside the key (none in
           practice: the theory already filters its Dvd witnesses, and
           padding covers exactly the formula's variables) are dropped
           rather than corrupting the entry. *)
        Sat
          (List.filter_map
             (fun (v, value) ->
               match Hashtbl.find_opt k.fwd v with
               | Some cv -> Some (cv, value)
               | None -> None)
             m)
      | r -> r
    in
    if Memo.length memo >= memo_limit then Memo.reset memo;
    Memo.replace memo k.key r

let solve ?(max_rounds = default_max_rounds) ~is_int f =
  let f = Formula.nnf f in
  bump_query ();
  match f with
  | Formula.True ->
    count_answer (Sat (List.map (fun v -> (v, Rat.zero)) (Formula.vars f)))
  | Formula.False -> count_answer Unsat
  | _ -> (
    let k = memo_key ~is_int ~max_rounds ~node_limit:default_node_limit f in
    match memo_find k with
    | Some r ->
      bump_cache_hit ();
      if Trace.enabled () then
        Trace.instant "memo.hit" ~args:[ ("key", Trace.Int (Hashtbl.hash k.key)) ];
      count_answer r
    | None ->
      if Trace.enabled () then
        Trace.instant "memo.miss" ~args:[ ("key", Trace.Int (Hashtbl.hash k.key)) ];
      let r = run_instance ~max_rounds ~is_int (make_instance f) in
      memo_store k r;
      count_answer r)

(* Unmemoized one-shot solve: in paranoid mode a memo hit replays the
   answer of an earlier (audited) computation without re-auditing, so
   callers that must certify {e this} verdict — [Rewrite.audit], the fuzz
   suite — bypass the cache. *)
let solve_fresh ?max_rounds ?node_limit ~is_int f =
  let f = Formula.nnf f in
  bump_query ();
  match f with
  | Formula.True ->
    count_answer (Sat (List.map (fun v -> (v, Rat.zero)) (Formula.vars f)))
  | Formula.False -> count_answer Unsat
  | _ ->
    count_answer (run_instance ?max_rounds ?node_limit ~is_int (make_instance f))

(* Exclude the model (on [distinct_on]) from later queries — permanently,
   or only while the [guard] literal is assumed. Returns the fresh
   disequality atoms, which join the abstraction and must be
   theory-checked by every query the clause is live for. *)
let block_model ?guard inst ~distinct_on m =
  let pairs =
    List.concat_map
      (fun v ->
        let value = Linexpr.const (model_value m v) in
        let lt = Atom.mk_lt (Linexpr.var v) value in
        let gt = Atom.mk_gt (Linexpr.var v) value in
        [ (lt, atom_var inst lt); (gt, atom_var inst gt) ])
      distinct_on
  in
  let lits = List.map (fun (_, v) -> Sat.pos v) pairs in
  Sat.add_clause inst.sat (match guard with Some g -> g :: lits | None -> lits);
  pairs

let solve_many ?max_rounds ~is_int ~count ~distinct_on f =
  if count <= 0 then ([], false)
  else begin
    let f = Formula.nnf f in
    match f with
    | Formula.False ->
      bump_query ();
      ignore (count_answer Unsat);
      ([], true)
    | _ -> begin
      let inst = make_instance f in
      let models = ref [] in
      let n = ref 0 in
      let exhausted = ref false in
      while !n < count && not !exhausted do
        bump_query ();
        match count_answer (run_instance ?max_rounds ~is_int inst) with
        | Unsat -> exhausted := true
        | Unknown -> exhausted := true
        | Sat m ->
          models := m :: !models;
          incr n;
          (* Block this model on the distinguished variables: the next
             model must differ on at least one of them. The fresh
             disequality atoms join the abstraction and are theory-checked
             like any other literal. *)
          if distinct_on = [] then exhausted := true
          else ignore (block_model inst ~distinct_on m)
      done;
      (List.rev !models, !exhausted)
    end
  end

let entails ~is_int p q =
  match solve ~is_int (Formula.and_ [ p; Formula.not_ q ]) with
  | Sat _ -> Some false
  | Unsat -> Some true
  | Unknown -> None

(* ------------------------------------------------------------------ *)
(* Persistent sessions                                                 *)
(* ------------------------------------------------------------------ *)

module FTbl = Hashtbl.Make (Formula)

module Session = struct
  type session = {
    inst : instance;
    is_int : int -> bool;
    (* NNF formula -> activation literal and the formula's atoms *)
    lits : (Sat.lit * (Atom.t * int) list) FTbl.t;
    base_atoms : (Atom.t * int) list;
    (* Formulas permanently asserted via [add_clause], with their atoms:
       always theory-relevant and always part of model validation. *)
    mutable asserted : Formula.t list;
    mutable asserted_atoms : (Atom.t * int) list;
  }

  type t = session

  let create ~is_int base =
    let base = Formula.nnf base in
    let inst = make_instance base in
    {
      inst;
      is_int;
      lits = FTbl.create 64;
      base_atoms = inst.atoms;
      asserted = [];
      asserted_atoms = [];
    }

  (* Activation literal for a formula: encoded once per session, then
     reused by every later query that assumes or asserts it. Because the
     encoding is implication-only, an unassumed activation literal leaves
     its clauses vacuously satisfiable. *)
  let lit t f =
    let f = Formula.nnf f in
    match FTbl.find_opt t.lits f with
    | Some entry -> entry
    | None ->
      let t0 = Sys.time () in
      let l = Trace.span "smt.encode" (fun () -> encode t.inst.sat (atom_var t.inst) f) in
      bump_encoding (Sys.time () -. t0);
      let entry =
        (l, List.map (fun a -> (a, atom_var t.inst a)) (Formula.atoms f))
      in
      FTbl.add t.lits f entry;
      entry

  let add_clause t f =
    let l, atoms = lit t f in
    Sat.add_clause t.inst.sat [ l ];
    t.asserted <- f :: t.asserted;
    t.asserted_atoms <- List.rev_append atoms t.asserted_atoms

  (* Atoms the theory must check for this query: base, permanently
     asserted formulas, current assumptions, and (during enumeration) the
     current call's model-blocking clauses, deduplicated. Stale atoms
     from other queries are deliberately left out — see [run_instance]. *)
  let relevant_atoms t query_atoms =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun (_, v) ->
        if Hashtbl.mem seen v then false
        else begin
          Hashtbl.add seen v ();
          true
        end)
      (t.base_atoms @ t.asserted_atoms @ query_atoms)

  (* [extra_lits]/[extra_atoms] carry raw per-call state (the enumeration
     guard and its blocking atoms) that has no formula counterpart.

     Queries without per-call state are answered through the global memo
     cache: the key is the full conjunction base ∧ asserted ∧ assumptions,
     canonicalized (see the memo above), so a threshold probe repeated on
     the sibling session of another column subset — or by a one-shot
     [solve] of the same conjunction — costs a table lookup. Enumeration
     calls ([extra_lits ≠ []]) bypass the cache: their answer depends on
     blocking clauses that exist only inside that call. *)
  let run ?(max_rounds = default_max_rounds) ?node_limit ?(extra_lits = [])
      ?(extra_atoms = []) t assumptions =
    bump_query ();
    let assumptions = List.map Formula.nnf assumptions in
    let memo_k =
      if extra_lits = [] && extra_atoms = [] then
        Some
          (memo_key ~is_int:t.is_int ~max_rounds
             ~node_limit:(Option.value node_limit ~default:default_node_limit)
             (Formula.nnf
                (Formula.and_
                   (t.inst.formula :: List.rev_append t.asserted assumptions))))
      else None
    in
    match Option.bind memo_k memo_find with
    | Some r ->
      bump_cache_hit ();
      (if Trace.enabled () then
         match memo_k with
         | Some k ->
           Trace.instant "memo.hit"
             ~args:[ ("key", Trace.Int (Hashtbl.hash k.key)) ]
         | None -> ());
      count_answer r
    | None ->
      (if Trace.enabled () then
         match memo_k with
         | Some k ->
           Trace.instant "memo.miss"
             ~args:[ ("key", Trace.Int (Hashtbl.hash k.key)) ]
         | None -> ());
      let encoded = List.map (lit t) assumptions in
      let r =
        run_instance ~max_rounds ?node_limit
          ~assumptions:(extra_lits @ List.map fst encoded)
          ~check:(t.asserted @ assumptions)
          ~theory_atoms:
            (relevant_atoms t (extra_atoms @ List.concat_map snd encoded))
          ~is_int:t.is_int t.inst
      in
      (match memo_k with Some k -> memo_store k r | None -> ());
      count_answer r

  let solve_under ?max_rounds ?node_limit ?(assumptions = []) t =
    run ?max_rounds ?node_limit t assumptions

  (* Model-blocking clauses are scoped to this call by a fresh activation
     literal: assumed while enumerating, vacuous afterwards. The session's
     later theory checks therefore do not pay for past enumerations;
     callers that need earlier models excluded again pass explicit
     exclusion assumptions. *)
  let solve_many_under ?max_rounds ?(assumptions = []) ~count ~distinct_on t =
    if count <= 0 then ([], false)
    else begin
      let guard = Sat.new_var t.inst.sat in
      let blocked = ref [] in
      let models = ref [] in
      let n = ref 0 in
      let exhausted = ref false in
      while !n < count && not !exhausted do
        match
          run ?max_rounds ~extra_lits:[ Sat.pos guard ] ~extra_atoms:!blocked t
            assumptions
        with
        | Unsat | Unknown -> exhausted := true
        | Sat m ->
          models := m :: !models;
          incr n;
          if distinct_on = [] then exhausted := true
          else
            blocked :=
              List.rev_append
                (block_model ~guard:(Sat.neg_lit guard) t.inst ~distinct_on m)
                !blocked
      done;
      (* Retire the guard: its blocking clauses are satisfied at level 0
         from now on and never constrain another query. *)
      Sat.add_clause t.inst.sat [ Sat.neg_lit guard ];
      (List.rev !models, !exhausted)
    end

  let n_encodings t = FTbl.length t.lits
end
