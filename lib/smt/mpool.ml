open Sia_numeric

(* Model pool: the first rung of the sample-generation ladder.

   Entries are *named* valuations — (column name, value) pairs — rather
   than solver-variable assignments: variable numbering is private to one
   encoding environment, while column names are stable across every
   attempt of a query family, so a model harvested by one CEGIS attempt
   replays in a sibling attempt without any canonical-translation
   machinery. The caller supplies the family key; Samples keys by
   (tables, predicate skeleton) — the exact key the fork-pool sharding
   groups by, so same-family attempts always run on one worker and the
   pool's evolution is identical sequential or parallel.

   The pool is a cache of *candidates*, never of answers: every replayed
   valuation is re-validated against the full current query (strict
   evaluation, or a certified re-derivation under SIA_CEGQI=0 /
   SIA_PARANOID) before it is returned as a sample. Dropping the pool can
   therefore only change cost, not results of the validation discipline —
   it is flushed by {!Solver.reset_caches} like every other cache. *)

type valuation = (string * Rat.t) array

type side = True_side | False_side

type entry = {
  mutable models : valuation list; (* newest first; see [candidates] *)
  mutable n_models : int;
  mutable dead_pins : (int * valuation) list;
      (* under-approx pins that conflicted, tagged by the query fingerprint
         they conflicted against: a pin that dries up refuting one CEGIS
         candidate is perfectly live for the next one, so conflicts must
         not outlive their query *)
  mutable n_dead : int;
}

(* Per-family caps keep replay and pin selection O(1)-ish and — more
   importantly — deterministic: once a family is full, later harvests are
   dropped instead of evicting older entries, so the candidate order a
   later attempt sees never depends on how many extra models an unrelated
   chunk happened to produce. *)
let max_models = 64
let max_dead = 128

let table : (string * int, entry) Hashtbl.t = Hashtbl.create 64

let side_ix = function True_side -> 0 | False_side -> 1

let entry_for key side =
  let k = (key, side_ix side) in
  match Hashtbl.find_opt table k with
  | Some e -> e
  | None ->
    let e = { models = []; n_models = 0; dead_pins = []; n_dead = 0 } in
    Hashtbl.add table k e;
    e

let same_valuation (a : valuation) (b : valuation) =
  Array.length a = Array.length b
  && Array.for_all2 (fun (n1, q1) (n2, q2) -> String.equal n1 n2 && Rat.equal q1 q2) a b

let harvest ~key side v =
  let e = entry_for key side in
  if e.n_models < max_models && not (List.exists (same_valuation v) e.models)
  then begin
    e.models <- v :: e.models;
    e.n_models <- e.n_models + 1
  end

let candidates ~key side =
  match Hashtbl.find_opt table (key, side_ix side) with
  | None -> []
  | Some e -> List.rev e.models (* insertion order: oldest first *)

let mark_dead ~key side ~tag pin =
  let e = entry_for key side in
  if
    e.n_dead < max_dead
    && not
         (List.exists
            (fun (t, p) -> t = tag && same_valuation pin p)
            e.dead_pins)
  then begin
    e.dead_pins <- (tag, pin) :: e.dead_pins;
    e.n_dead <- e.n_dead + 1
  end

let is_dead ~key side ~tag pin =
  match Hashtbl.find_opt table (key, side_ix side) with
  | None -> false
  | Some e ->
    List.exists (fun (t, p) -> t = tag && same_valuation pin p) e.dead_pins

let reset () = Hashtbl.reset table

(* Differential harnesses (serve-vs-batch, jobs differential) compare
   cold runs via [Solver.reset_caches]; the pool must go cold with the
   solver caches it grew alongside. *)
let () = Solver.on_reset_caches reset
