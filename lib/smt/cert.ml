(* Certificate data shared between the solver (producer) and the
   independent checker in [lib/check] (consumer). Everything here is pure
   data over [Sia_numeric] and SAT literal integers: no solver state leaks
   into a certificate, so a checker can replay one with nothing but the
   original input and exact arithmetic. *)

open Sia_numeric

exception Certificate_error of string
(** Raised by certificate consumers when a certificate does not actually
    establish the verdict it was attached to. *)

(* ------------------------------------------------------------------ *)
(* Theory certificates                                                 *)
(* ------------------------------------------------------------------ *)

(* A Farkas combination references the linear atoms of the subproblem it
   refutes. [Hyp (i, j)] is atom [j] of the (tightened) expansion of core
   literal [i]; [Cut k] is the [k]-th branch-and-bound cut on the path
   from the root of the branch tree to the leaf holding the combination
   (the root branch contributes cut 0). *)
type fref =
  | Hyp of int * int
  | Cut of int

type farkas = (fref * Rat.t) list
(** Coefficients of an infeasible combination: [Le]/[Lt] atoms must carry
    non-negative coefficients, [Eq] atoms may carry any sign. Summing
    [coeff * (e rel 0)] over the entries must cancel every variable and
    leave a constant [c] with [c > 0], or [c = 0] when at least one strict
    atom has a positive coefficient. *)

(* Branch-and-bound refutation tree. A [Branch] splits on [var <= floor]
   versus [var >= floor + 1]; the split is exhaustive only for variables
   that range over the integers (or do not occur in the subproblem at
   all), which the checker verifies. *)
type tree =
  | Leaf of farkas
  | Branch of { var : int; floor : Bigint.t; le : tree; ge : tree }

(* How an Unsat theory core was refuted: either a branch tree of Farkas
   leaves, or the gcd test — expansion atom [j] of core literal [i] is an
   integer equality [sum a_k x_k + c = 0] whose coefficient gcd does not
   divide [c]. *)
type refutation =
  | Tree of tree
  | Gcd of int * int

type theory_cert = {
  fresh : int list array;
      (** Per core literal, the fresh witness variables its expansion
          introduced (divisibility quotients/remainders), in expansion
          order. The checker re-derives the expansion itself and only
          trusts these identifiers to name the witnesses. *)
  refutation : refutation;
}

(* ------------------------------------------------------------------ *)
(* Propositional proof events                                          *)
(* ------------------------------------------------------------------ *)

(* DRUP-style clausal proof log, streamed as the solver runs. [Given] is
   every clause handed to the SAT core (input encoding, theory lemmas),
   pre-simplification. [Learnt] clauses must be RUP with respect to the
   clauses seen so far: asserting their negation and unit-propagating
   yields a conflict. [Final lits] closes an Unsat verdict: asserting the
   assumption literals [lits] and unit-propagating yields a conflict
   ([lits] is empty when the instance itself is unsat). *)
type sat_event =
  | Given of int list
  | Learnt of int list
  | Final of int list
