open Sia_numeric
module IntMap = Map.Make (Int)

type t = { tm : Rat.t IntMap.t; k : Rat.t }

let zero = { tm = IntMap.empty; k = Rat.zero }
let const k = { tm = IntMap.empty; k }
let of_int n = const (Rat.of_int n)

let var ?(coeff = Rat.one) x =
  if Rat.is_zero coeff then zero else { tm = IntMap.singleton x coeff; k = Rat.zero }

let norm_add c1 c2 =
  let c = Rat.add c1 c2 in
  if Rat.is_zero c then None else Some c

let add a b =
  let tm =
    IntMap.union (fun _ c1 c2 -> norm_add c1 c2) a.tm b.tm
  in
  { tm; k = Rat.add a.k b.k }

let neg a = { tm = IntMap.map Rat.neg a.tm; k = Rat.neg a.k }
let sub a b = add a (neg b)

let scale c a =
  if Rat.is_zero c then zero
  else { tm = IntMap.map (Rat.mul c) a.tm; k = Rat.mul c a.k }

let coeff a x = match IntMap.find_opt x a.tm with Some c -> c | None -> Rat.zero
let constant a = a.k
let set_constant a k = { a with k }
let remove a x = { a with tm = IntMap.remove x a.tm }
let terms a = IntMap.bindings a.tm
let vars a = List.map fst (terms a)
let is_const a = IntMap.is_empty a.tm
let mem a x = IntMap.mem x a.tm

let rename f a =
  let tm =
    IntMap.fold
      (fun x c acc ->
        IntMap.update (f x)
          (function None -> Some c | Some c' -> norm_add c c')
          acc)
      a.tm IntMap.empty
  in
  { tm; k = a.k }

let subst e x r =
  let c = coeff e x in
  if Rat.is_zero c then e else add (remove e x) (scale c r)

let eval a lookup =
  IntMap.fold (fun x c acc -> Rat.add acc (Rat.mul c (lookup x))) a.tm a.k

let scale_to_int a =
  (* lcm of denominators, then divide by gcd of numerators *)
  let open Bigint in
  let denoms =
    IntMap.fold (fun _ (c : Rat.t) acc -> lcm acc c.Rat.den) a.tm a.k.Rat.den
  in
  let scaled = scale (Rat.of_bigint denoms) a in
  let g =
    IntMap.fold
      (fun _ (c : Rat.t) acc -> gcd acc c.Rat.num)
      scaled.tm
      (abs scaled.k.Rat.num)
  in
  if is_zero g || equal g one then scaled
  else scale (Rat.make Bigint.one g) scaled

let compare a b =
  let c = IntMap.compare Rat.compare a.tm b.tm in
  if c <> 0 then c else Rat.compare a.k b.k

let equal a b = compare a b = 0

(* Allocation-free: Rat.hash is representation-independent, so the old
   detour through Rat.to_string (one string per coefficient per hash)
   is unnecessary. *)
let hash a =
  IntMap.fold
    (fun x c acc -> (((acc * 1000003) + x) * 1000003) + Rat.hash c)
    a.tm (Rat.hash a.k)

let pp ?(name = fun i -> Printf.sprintf "x%d" i) fmt a =
  let first = ref true in
  IntMap.iter
    (fun x c ->
      let s = Rat.sign c in
      if !first then begin
        if Rat.equal c Rat.one then Format.fprintf fmt "%s" (name x)
        else if Rat.equal c Rat.minus_one then Format.fprintf fmt "-%s" (name x)
        else Format.fprintf fmt "%a*%s" Rat.pp c (name x);
        first := false
      end
      else begin
        let c' = Rat.abs c in
        let op = if s >= 0 then "+" else "-" in
        if Rat.equal c' Rat.one then Format.fprintf fmt " %s %s" op (name x)
        else Format.fprintf fmt " %s %a*%s" op Rat.pp c' (name x)
      end)
    a.tm;
  if !first then Rat.pp fmt a.k
  else if not (Rat.is_zero a.k) then begin
    let op = if Rat.sign a.k >= 0 then "+" else "-" in
    Format.fprintf fmt " %s %a" op Rat.pp (Rat.abs a.k)
  end
